package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memsci/internal/accel"
	"memsci/internal/blocking"
	"memsci/internal/core"
	"memsci/internal/energy"
	"memsci/internal/lowprec"
	"memsci/internal/matgen"
	"memsci/internal/report"
	"memsci/internal/solver"
	"memsci/internal/sparse"
)

// mixedprecTol is the outer convergence bar of the refinement study: the
// scientific-computing tolerance of §II that low-precision datapaths
// cannot reach on their own.
const mixedprecTol = 1e-10

// mixedprecCases are the corpus matrices of the refinement study with
// their stand-in scale factors (multiplied by -scale). The factors are
// sized so the full sweep — one full-precision solve plus three
// refinement runs per matrix — finishes in a couple of minutes.
var mixedprecCases = []struct {
	name  string
	scale float64
}{
	{"crystm03", 0.06},
	{"Pres_Poisson", 0.08},
	{"qa8fm", 0.06},
}

// runMixedprec compares mixed-precision iterative refinement against the
// full-precision bit-exact pipeline: the same SPD corpus systems are
// solved (a) by full-precision CG on the default engine, (b) by
// solver.Refine with a reduced-slice 8-bit inner engine, (c) with a
// ReFloat-style block-exponent inner engine (8-bit significands, 12-bit
// exponent window), and (d) with the lowprec fixed-point datapath as the
// inner operator. All refinement runs must hit the same 1e-10 true
// residual as the full solve; the payoff is the ADC-conversion ratio.
//
// With -gate, the committed threshold file is read and the run fails
// (nonzero exit) unless every accel refinement run converges to 1e-10
// AND spends at most threshold× the full-precision solve's ADC
// conversions.
func runMixedprec(opt *options) error {
	var gateThreshold float64
	if opt.gate != "" {
		var err error
		gateThreshold, err = readGateThreshold(opt.gate)
		if err != nil {
			return err
		}
	}

	ecfg := energy.Default()
	// Conversion energy modeled at the 512-wide ADC rate (the paper's
	// largest cluster); relative numbers are insensitive to the size.
	adcJ := ecfg.ADCEnergyPerConversion(512)

	t := report.NewTable("matrix", "scheme", "outer", "inner iters",
		"true resid", "ADC conv", "vs full", "ADC energy (uJ)")

	var gateFailures []string
	for _, c := range mixedprecCases {
		spec, err := matgen.ByName(c.name)
		if err != nil {
			return err
		}
		m := spec.GenerateScaled(c.scale * opt.scale)
		b := sparse.Ones(m.Rows())
		trueRes := func(x []float64) float64 {
			return sparse.Norm2(sparse.Residual(m, x, b)) / sparse.Norm2(b)
		}
		plan, err := blocking.Preprocess(m, blocking.DefaultSubstrate())
		if err != nil {
			return err
		}

		// (a) Full-precision baseline: bit-exact CG on the default engine.
		full, err := accel.NewEngine(plan, core.DefaultClusterConfig(), opt.seed)
		if err != nil {
			return err
		}
		full.TakeStats()
		fres, err := solver.CG(full, b, solver.Options{Tol: mixedprecTol, MaxIter: 20000})
		if err != nil {
			return err
		}
		fullConv := full.TakeStats().Conversions
		t.Add(c.name, "full-precision CG", "-", fres.Iterations,
			fmt.Sprintf("%.2e", trueRes(fres.X)), fullConv, "1.00x",
			fmt.Sprintf("%.2f", float64(fullConv)*adcJ*1e6))

		// (b)+(c) Refinement with quantized inner engines.
		for _, v := range []struct {
			label string
			cfg   core.ClusterConfig
		}{
			{"refine reduced-slice 8b", core.ReducedSliceConfig(8)},
			{"refine block-exp 8b/w12", core.BlockExpConfig(8, 12)},
		} {
			eng, err := accel.NewEngine(plan, v.cfg, opt.seed)
			if err != nil {
				return err
			}
			eng.TakeStats()
			rres, err := solver.Refine(solver.CSROperator{M: m}, eng, b,
				solver.RefineOptions{Tol: mixedprecTol, MaxOuter: 60})
			if err != nil {
				return err
			}
			conv := eng.TakeStats().Conversions
			ratio := float64(conv) / float64(fullConv)
			tr := trueRes(rres.X)
			t.Add(c.name, v.label, rres.Outer, rres.InnerIterations,
				fmt.Sprintf("%.2e", tr), conv, fmt.Sprintf("%.2fx", ratio),
				fmt.Sprintf("%.2f", float64(conv)*adcJ*1e6))
			if opt.gate != "" {
				if !rres.Converged || tr > mixedprecTol {
					gateFailures = append(gateFailures, fmt.Sprintf(
						"%s/%s: true residual %.2e > %.0e", c.name, v.label, tr, mixedprecTol))
				}
				if ratio > gateThreshold {
					gateFailures = append(gateFailures, fmt.Sprintf(
						"%s/%s: ADC-conversion ratio %.3f > committed threshold %.3f",
						c.name, v.label, ratio, gateThreshold))
				}
			}
		}

		// (d) Refinement with the lowprec fixed-point datapath as the
		// inner operator (no ADC counters: it models a digital datapath).
		op, err := lowprec.New(m, 8, 512)
		if err != nil {
			return err
		}
		inner, ref := op.ForRefinement()
		rres, err := solver.Refine(ref, inner, b,
			solver.RefineOptions{Tol: mixedprecTol, MaxOuter: 60})
		if err != nil {
			return err
		}
		t.Add(c.name, "refine lowprec 8b", rres.Outer, rres.InnerIterations,
			fmt.Sprintf("%.2e", trueRes(rres.X)), "-", "-", "-")
	}
	emit(t, opt)

	fmt.Println("\nMixed-precision iterative refinement (Le Gallo et al.): the inner Krylov")
	fmt.Println("solve runs on a reduced-slice or block-exponent engine while the fp64 outer")
	fmt.Println("loop recomputes true residuals — same 1e-10 accuracy as the bit-exact")
	fmt.Println("pipeline at a fraction of the ADC conversions.")

	if opt.gate != "" {
		if len(gateFailures) > 0 {
			for _, f := range gateFailures {
				fmt.Fprintf(os.Stderr, "mixedprec gate FAIL: %s\n", f)
			}
			return fmt.Errorf("mixedprec gate: %d check(s) failed against %s", len(gateFailures), opt.gate)
		}
		fmt.Printf("\nmixedprec gate PASS: all accel refinement runs converged to %.0e with ADC ratio <= %.3f\n",
			mixedprecTol, gateThreshold)
	}
	return nil
}

// readGateThreshold parses the committed ADC-conversion-ratio threshold:
// the first non-comment, non-blank line of the file as a float.
func readGateThreshold(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing gate threshold %q in %s: %w", line, path, err)
		}
		if v <= 0 {
			return 0, fmt.Errorf("gate threshold in %s must be positive, got %g", path, v)
		}
		return v, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no threshold value found in %s", path)
}
