package main

import (
	"fmt"

	"memsci/internal/lowprec"
	"memsci/internal/matgen"
	"memsci/internal/obs"
	"memsci/internal/report"
	"memsci/internal/solver"
	"memsci/internal/sparse"
)

// runMotivation reproduces the paper's §I motivation: the 8- to 16-bit
// fixed-point datapaths of prior machine-learning accelerators cannot
// reach scientific solver tolerances, while the proposed full-precision
// pipeline converges exactly like IEEE double. CG runs over datapaths of
// decreasing width on a representative SPD system; the achieved *true*
// residual is what matters (the solver's internal recurrence can be
// fooled by a quantized operator).
func runMotivation(opt *options) error {
	spec := matgen.Spec{
		Name: "motivation", Rows: 600, NNZ: 600 * 12, SPD: true, Class: matgen.Banded,
		Band: 48, ExpSpread: 10, Seed: 99, DiagMargin: 0.02,
	}
	m := spec.Generate()
	b := sparse.Ones(m.Rows())
	sopt := solver.Options{Tol: 1e-10, MaxIter: 5000}

	// tracedCG runs one CG solve, dumping its per-iteration trace when
	// the -trace flag is set (CSR-style operators: no hardware deltas).
	tracedCG := func(op solver.Operator, label string) (*solver.Result, error) {
		runOpt := sopt
		var rec *obs.Recorder
		if opt.trace != "" {
			rec = obs.NewRecorder(nil)
			runOpt.Monitor = rec.Observe
		}
		res, err := solver.CG(op, b, runOpt)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			tr := rec.Finish(res.Converged, res.Residual)
			tr.Label, tr.Method, tr.Backend = label, "cg", "csr"
			tr.Rows, tr.NNZ = m.Rows(), m.NNZ()
			if err := opt.dumpTrace(tr); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	t := report.NewTable("datapath", "matrix quantization error", "CG iterations", "true residual", "reaches eps=1e-8?")

	ref, err := tracedCG(solver.CSROperator{M: m}, "motivation/ieee-double")
	if err != nil {
		return err
	}
	trueRes := func(x []float64) float64 {
		return sparse.Norm2(sparse.Residual(m, x, b)) / sparse.Norm2(b)
	}
	t.Add("IEEE double (this work's pipeline)", "0", ref.Iterations,
		fmt.Sprintf("%.2e", trueRes(ref.X)), trueRes(ref.X) <= 1e-8)

	for _, bits := range []int{32, 16, 8} {
		op, err := lowprec.New(m, bits, 512)
		if err != nil {
			return err
		}
		res, err := tracedCG(op, fmt.Sprintf("motivation/%d-bit", bits))
		if err != nil {
			return err
		}
		tr := trueRes(res.X)
		t.Add(fmt.Sprintf("%d-bit fixed point (ISAAC-class)", bits),
			fmt.Sprintf("%.2e", op.QuantizationError()),
			res.Iterations, fmt.Sprintf("%.2e", tr), tr <= 1e-8)
	}
	emit(t, opt)
	fmt.Println("\n§I: \"the eight- to 16-bit computations afforded by memristive MVM accelerators")
	fmt.Println("are acceptable for machine learning, [but] insufficient for scientific computing\"")
	fmt.Println("— the quantized datapaths stall at their quantization floor; the bit-exact")
	fmt.Println("pipeline of this work converges identically to IEEE double (§VII-C).")
	return nil
}
