package main

import (
	"fmt"

	"memsci/internal/accel"
	"memsci/internal/energy"
	"memsci/internal/gpu"
	"memsci/internal/report"
)

// runArea prints the system area footprint (§VIII-C).
func runArea(opt *options) error {
	cfg := energy.Default()
	a := cfg.SystemArea()
	t := report.NewTable("component", "area [mm2]", "share")
	t.Add("crossbars + drivers + ADCs", fmt.Sprintf("%.1f", a.Crossbars), fmt.Sprintf("%.1f%%", 100*a.Crossbars/a.Total))
	t.Add("cluster buffers + reduction", fmt.Sprintf("%.1f", a.ClusterMisc), fmt.Sprintf("%.1f%%", 100*a.ClusterMisc/a.Total))
	t.Add("bank processors (LEON3+FMA)", fmt.Sprintf("%.1f", a.Processors), fmt.Sprintf("%.1f%%", 100*a.Processors/a.Total))
	t.Add("global memory (eDRAM)", fmt.Sprintf("%.1f", a.GlobalMem), fmt.Sprintf("%.1f%%", 100*a.GlobalMem/a.Total))
	t.Add("total", fmt.Sprintf("%.1f", a.Total), "100%")
	emit(t, opt)
	p100 := gpu.P100()
	fmt.Printf("\npaper: 539 mm2 total (vs %0.f mm2 P100 die); crossbars+periphery dominant;\n"+
		"processors + global memory 13.6%% (here %.1f%%)\n", p100.DieArea, a.ProcessorShare()*100)
	return nil
}

// runEndurance prints the system-lifetime analysis (§VIII-E).
func runEndurance(opt *options) error {
	evals, err := evaluateCatalog(opt)
	if err != nil {
		return err
	}
	cfg := energy.Default()
	t := report.NewTable("matrix", "solve time", "full rewrite", "lifetime [years]")
	var worst float64
	first := true
	for _, ev := range evals {
		if ev.Target != accel.OnAccelerator {
			continue
		}
		years := cfg.EnduranceYears(ev.SolveTime)
		if first || years < worst {
			worst = years
			first = false
		}
		t.Add(ev.Name, report.SI(ev.SolveTime, "s"), report.SI(ev.WriteTime, "s"),
			fmt.Sprintf("%.0f", years))
	}
	emit(t, opt)
	fmt.Printf("\nconservative model: every array fully rewritten between back-to-back solves,\n"+
		"cell endurance %.0e writes. worst-case lifetime %.0f years.\n",
		cfg.CellEndurance, worst)
	fmt.Printf("the paper's >100-year figure assumes solves of >= %.1f s; our modeled solves are\n"+
		"shorter (fewer iterations), which only strengthens the conclusion per unit of work:\n"+
		"lifetime in completed solves is endurance-limited at %.0e solves either way.\n",
		100*365.25*24*3600/cfg.CellEndurance, cfg.CellEndurance)
	return nil
}
