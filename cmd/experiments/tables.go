package main

import (
	"fmt"
	"os"

	"memsci/internal/blocking"
	"memsci/internal/core"
	"memsci/internal/energy"
	"memsci/internal/matgen"
	"memsci/internal/report"
)

func emit(t *report.Table, opt *options) {
	if opt.csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
}

// runTable1 prints the accelerator configuration (Table I).
func runTable1(opt *options) error {
	cfg := energy.Default()
	t := report.NewTable("component", "configuration")
	t.Add("System", fmt.Sprintf("%d banks, double-precision floating point, f=%.1f GHz", cfg.Banks, cfg.ClockHz/1e9))
	bank := ""
	for _, cc := range cfg.ClusterCounts() {
		bank += fmt.Sprintf("(%d) %dx%d clusters, ", cc.Count, cc.Size, cc.Size)
	}
	t.Add("Bank", bank+"1 local processor (LEON3-class)")
	t.Add("Cluster", fmt.Sprintf("%d bit-slice crossbars, shift-and-add reduction", cfg.PlanesPerCluster))
	t.Add("Crossbar", "NxN single-bit cells, (log2(N)-1)-bit pipelined SAR ADC (CIC), 2N drivers")
	t.Add("Cell", "TaOx, Ron=2kOhm, Roff=3MOhm, Vread=0.2V, Ewrite=3.91nJ, Twrite=50.88ns")
	t.Add("Operand", fmt.Sprintf("%d-bit aligned fixed point + %d-bit AN code (A=251)", core.OperandBits, 9))
	t.Add("Vector section", fmt.Sprintf("%d elements per bank", cfg.VectorSection))
	emit(t, opt)
	return nil
}

// runTable2 regenerates Table II: the matrix set with measured blocking
// efficiency next to the paper's.
func runTable2(opt *options) error {
	t := report.NewTable("matrix", "rows", "nnz", "nnz/row", "blocked", "paper", "passes", "excluded")
	for _, spec := range matgen.Catalog() {
		m := generate(spec, opt)
		plan, err := blocking.Preprocess(m, blocking.DefaultSubstrate())
		if err != nil {
			return err
		}
		t.Add(spec.Name, m.Rows(), m.NNZ(),
			fmt.Sprintf("%.1f", float64(m.NNZ())/float64(m.Rows())),
			fmt.Sprintf("%.1f%%", plan.Stats.Efficiency()*100),
			fmt.Sprintf("%.1f%%", spec.PaperBlocked*100),
			fmt.Sprintf("%.2f", plan.Stats.Passes()),
			plan.Stats.ExcludedNNZ)
	}
	emit(t, opt)
	fmt.Println("\npasses = entry touches per nonzero during preprocessing (paper: worst 4, avg 1.8)")
	return nil
}

// runTable3 prints per-crossbar area, energy, and latency (Table III).
func runTable3(opt *options) error {
	cfg := energy.Default()
	t := report.NewTable("size", "area [mm2]", "energy [pJ]", "latency [ns]", "ADC res [bits]", "write [us]")
	for _, size := range []int{64, 128, 256, 512} {
		t.Add(size,
			fmt.Sprintf("%.5f", cfg.XbarArea(size)),
			fmt.Sprintf("%.1f", cfg.XbarOpEnergy(size)*1e12),
			fmt.Sprintf("%.1f", cfg.XbarOpLatency(size)*1e9),
			fmt.Sprintf("%d", adcRes(size)),
			fmt.Sprintf("%.1f", cfg.ClusterWriteTime(size)*1e6))
	}
	emit(t, opt)
	fmt.Println("\npaper Table III: 64/128/256/512 -> 0.00078/0.00103/0.00162/0.00352 mm2, 28.0/65.2/150/342 pJ, 53.3/107/213/427 ns")
	return nil
}

func adcRes(size int) int {
	r := 0
	for n := size; n > 1; n >>= 1 {
		r++
	}
	return r - 1 // CIC saves one bit (§V-B2)
}
