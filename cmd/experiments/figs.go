package main

import (
	"fmt"
	"os"
	"sync"

	"memsci/internal/accel"
	"memsci/internal/blocking"
	"memsci/internal/core"
	"memsci/internal/matgen"
	"memsci/internal/obs"
	"memsci/internal/report"
	"memsci/internal/solver"
	"memsci/internal/sparse"
)

// ---- shared evaluation cache ----

var evalCache struct {
	sync.Mutex
	scale float64
	evals []*accel.Evaluation
}

func generate(spec matgen.Spec, opt *options) *sparse.CSR {
	if opt.scale >= 1 {
		return spec.Generate()
	}
	return spec.GenerateScaled(opt.scale)
}

// measureIters solves a reduced-size stand-in numerically to obtain the
// solver iteration count for the matrix (identical on GPU and
// accelerator, §VII-C). The system is Jacobi-scaled first — symmetric
// diagonal scaling for SPD matrices, row scaling otherwise — the standard
// normalization both platforms would apply identically, so the count
// transfers. Counts cap at 3000 (the paper reports "thousands of
// iterations"; a capped measurement only makes the Fig. 10 amortization
// *more* conservative).
func measureIters(spec matgen.Spec, eopt *options) (int, error) {
	scale := 40000.0 / float64(spec.Rows)
	if scale > 1 {
		scale = 1
	}
	m := spec.GenerateScaled(scale)
	if _, err := m.JacobiScale(spec.SPD); err != nil {
		return 0, err
	}
	opt := solver.Options{Tol: 1e-8, MaxIter: 3000}
	var rec *obs.Recorder
	if eopt.trace != "" {
		rec = obs.NewRecorder(nil)
		opt.Monitor = rec.Observe
	}
	op := solver.CSROperator{M: m}
	b := sparse.Ones(m.Rows())
	method := "cg"
	var res *solver.Result
	var err error
	if spec.SPD {
		res, err = solver.CG(op, b, opt)
	} else {
		method = "bicgstab"
		res, err = solver.BiCGSTAB(op, b, opt)
	}
	if err != nil {
		return 0, err
	}
	if rec != nil {
		t := rec.Finish(res.Converged, res.Residual)
		t.Label, t.Method, t.Backend = spec.Name+"/measure-iters", method, "csr"
		t.Rows, t.NNZ = m.Rows(), m.NNZ()
		if err := eopt.dumpTrace(t); err != nil {
			return 0, err
		}
	}
	if res.Iterations == 0 {
		return 1, nil
	}
	return res.Iterations, nil
}

func evaluateCatalog(opt *options) ([]*accel.Evaluation, error) {
	evalCache.Lock()
	defer evalCache.Unlock()
	if evalCache.evals != nil && evalCache.scale == opt.scale {
		return evalCache.evals, nil
	}
	sys := accel.NewSystem()
	var evals []*accel.Evaluation
	for _, spec := range matgen.Catalog() {
		m := generate(spec, opt)
		iters := spec.SolveIters
		if opt.measure {
			mi, err := measureIters(spec, opt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			iters = mi
		}
		ev, err := accel.Evaluate(spec.Name, m, !spec.SPD, iters, sys)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		evals = append(evals, ev)
	}
	evalCache.scale = opt.scale
	evalCache.evals = evals
	return evals, nil
}

// ---- Figure 6: scheduling policies ----

func runFig6(opt *options) error {
	// The paper's illustrative 4×4 example with the cutoff at
	// significance 2 (Fig. 6): vertical 16/4, diagonal 13/5, hybrid 14/4.
	t := report.NewTable("policy", "grid", "cutoff", "activations", "steps", "skipped")
	for _, pc := range []struct {
		p     core.Policy
		bands int
	}{{core.Vertical, 0}, {core.Diagonal, 0}, {core.Hybrid, 2}} {
		_, st := core.PlanSchedule(pc.p, 4, 4, 2, pc.bands)
		t.Add(st.Policy.String(), "4x4", 2, st.Activations, st.Steps, st.Skipped)
	}
	// Full-scale grids: 127 matrix slices × 64 vector slices at
	// realistic early-termination cutoffs.
	for _, cutoff := range []int{0, 60, 100, 140} {
		for _, pc := range []struct {
			p     core.Policy
			bands int
		}{{core.Vertical, 0}, {core.Diagonal, 0}, {core.Hybrid, 2}, {core.Hybrid, 8}} {
			_, st := core.PlanSchedule(pc.p, 127, 64, cutoff, pc.bands)
			name := st.Policy.String()
			if pc.p == core.Hybrid {
				name = fmt.Sprintf("hybrid(%d)", pc.bands)
			}
			t.Add(name, "127x64", cutoff, st.Activations, st.Steps, st.Skipped)
		}
	}
	emit(t, opt)
	return nil
}

// ---- Figures 7 and 11: blocking patterns ----

func blockingFigure(names []string, opt *options) error {
	for _, name := range names {
		spec, err := matgen.ByName(name)
		if err != nil {
			return err
		}
		m := generate(spec, opt)
		plan, err := blocking.Preprocess(m, blocking.DefaultSubstrate())
		if err != nil {
			return err
		}
		fmt.Printf("%s: %dx%d, %d nnz, blocked %.1f%% (paper %.1f%%)\n",
			name, m.Rows(), m.Cols(), m.NNZ(), plan.Stats.Efficiency()*100, spec.PaperBlocked*100)
		t := report.NewTable("block size", "blocks", "nnz captured", "share of nnz", "mean density")
		for _, size := range []int{512, 256, 128, 64} {
			ss := plan.Stats.PerSize[size]
			var density float64
			if ss.Blocks > 0 {
				density = float64(ss.NNZ) / (float64(ss.Blocks) * float64(size) * float64(size))
			}
			t.Add(size, ss.Blocks, ss.NNZ,
				fmt.Sprintf("%.1f%%", 100*float64(ss.NNZ)/float64(m.NNZ())),
				fmt.Sprintf("%.2f%%", density*100))
		}
		emit(t, opt)
		fmt.Println(sparsityMap(m, 48))
	}
	return nil
}

func runFig7(opt *options) error {
	return blockingFigure([]string{"Pres_Poisson", "xenon1"}, opt)
}

func runFig11(opt *options) error {
	if err := blockingFigure([]string{"ns3Da"}, opt); err != nil {
		return err
	}
	fmt.Println("ns3Da's nonzeros are spread quasi-uniformly; no block size captures dense sub-blocks (§VIII-F).")
	return nil
}

// sparsityMap renders an n×n character map of nonzero density (the
// textual analog of the paper's spy plots).
func sparsityMap(m *sparse.CSR, n int) string {
	grid := make([]int, n*n)
	rs := float64(n) / float64(m.Rows())
	cs := float64(n) / float64(m.Cols())
	for i := 0; i < m.Rows(); i++ {
		gi := int(float64(i) * rs)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			gj := int(float64(m.ColIdx[k]) * cs)
			grid[gi*n+gj]++
		}
	}
	max := 0
	for _, v := range grid {
		if v > max {
			max = v
		}
	}
	shades := []byte(" .:+*#@")
	out := make([]byte, 0, n*(n+1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := grid[i*n+j]
			idx := 0
			if v > 0 && max > 0 {
				idx = 1 + v*(len(shades)-2)/max
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			out = append(out, shades[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

// ---- Figures 8-10: speedup, energy, initialization overhead ----

func runFig8(opt *options) error {
	evals, err := evaluateCatalog(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("matrix", "solver", "iters", "target", "gpu iter", "accel iter", "speedup")
	var labels []string
	var speedups []float64
	for _, ev := range evals {
		sv := "CG"
		if ev.BiCGSTAB {
			sv = "BiCG-STAB"
		}
		t.Add(ev.Name, sv, ev.Iters, ev.Target.String(),
			report.SI(ev.GPUIterTime, "s"), report.SI(ev.AccelIterTime, "s"),
			fmt.Sprintf("%.2fx", ev.Speedup()))
		labels = append(labels, ev.Name)
		speedups = append(speedups, ev.Speedup())
	}
	emit(t, opt)
	fmt.Println()
	report.Bars(os.Stdout, "Speedup over the GPU baseline (Figure 8)", labels, speedups, "x")
	fmt.Printf("\nG-MEAN speedup: %.2fx   (paper: 10.3x)\n", report.GeoMean(speedups))
	return nil
}

func runFig9(opt *options) error {
	evals, err := evaluateCatalog(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("matrix", "gpu energy/iter", "accel energy/iter", "normalized")
	var labels []string
	var norm []float64
	var impAll, impAccel []float64
	for _, ev := range evals {
		r := ev.EnergyRatio()
		t.Add(ev.Name, report.SI(ev.GPUIterEnergy, "J"), report.SI(ev.AccelIterEnergy, "J"),
			fmt.Sprintf("%.4f", r))
		labels = append(labels, ev.Name)
		norm = append(norm, r)
		impAll = append(impAll, 1/r)
		if ev.Target == accel.OnAccelerator {
			impAccel = append(impAccel, 1/r)
		}
	}
	emit(t, opt)
	fmt.Println()
	report.LogBars(os.Stdout, "Energy normalized to the GPU baseline (Figure 9)", labels, norm, "")
	fmt.Printf("\nmean improvement over all %d matrices: %.1fx (paper: 10.9x); over the %d accelerated: %.1fx (paper: 14.2x)\n",
		len(impAll), report.GeoMean(impAll), len(impAccel), report.GeoMean(impAccel))
	return nil
}

func runFig10(opt *options) error {
	evals, err := evaluateCatalog(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("matrix", "preprocess", "write", "solve", "overhead")
	var labels []string
	var over []float64
	for _, ev := range evals {
		if ev.Target != accel.OnAccelerator {
			continue // Fig. 10 covers the matrices solved on the accelerator
		}
		o := ev.InitOverhead()
		t.Add(ev.Name, report.SI(ev.PreprocessTime, "s"), report.SI(ev.WriteTime, "s"),
			report.SI(ev.SolveTime, "s"), fmt.Sprintf("%.2f%%", o*100))
		labels = append(labels, ev.Name)
		over = append(over, o*100)
	}
	emit(t, opt)
	fmt.Println()
	report.Bars(os.Stdout, "Preprocessing + write time as % of solve time (Figure 10)", labels, over, "%")
	fmt.Println("\npaper: below 20% everywhere, typically below 4%, falling with system size")
	return nil
}
