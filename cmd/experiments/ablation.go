package main

import (
	"fmt"
	"math/rand"
	"os"

	"memsci/internal/blocking"
	"memsci/internal/core"
	"memsci/internal/direct"
	"memsci/internal/matgen"
	"memsci/internal/report"
)

// runAblation quantifies each §IV technique in isolation on a functional
// cluster: what naive fixed-point emulation would cost, and what exponent
// locality, early termination, CIC, ADC headstart, AN coding, and the
// scheduling policy each contribute.
func runAblation(opt *options) error {
	// A representative 256-wide block with a moderate exponent spread.
	spec := matgen.Spec{
		Name: "ablation", Rows: 256, NNZ: 256 * 16, SPD: true, Class: matgen.Banded,
		Band: 128, ExpSpread: 16, Seed: 321, DiagMargin: 0.05,
	}
	m := spec.Generate()
	sub := blocking.Substrate{
		Sizes:     []int{256},
		MaxPad:    core.MaxPadBits,
		Threshold: func(int) int { return 64 },
	}
	plan, err := blocking.Preprocess(m, sub)
	if err != nil {
		return err
	}
	blk := plan.Blocks[0]
	coefs := blk.Coefs()
	rows, cols := blk.Size, blk.Size
	if blk.RowOff+rows > m.Rows() {
		rows = m.Rows() - blk.RowOff
	}
	if blk.ColOff+cols > m.Cols() {
		cols = m.Cols() - blk.ColOff
	}
	block, err := core.NewBlock(rows, cols, coefs, core.MaxPadBits)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	run := func(mutate func(*core.ClusterConfig)) (*core.Cluster, *core.ComputeStats) {
		cfg := core.DefaultClusterConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		cl, err := core.NewCluster(block, cfg)
		if err != nil {
			panic(err)
		}
		if _, err := cl.MulVec(x); err != nil {
			panic(err)
		}
		return cl, cl.Stats()
	}

	base, baseSt := run(nil)

	fmt.Printf("block: %dx%d, %d nnz, exponent spread %d bits, stored operand %d bits\n\n",
		rows, cols, block.NNZ(), block.Code.PadBits(), block.StoredBits())

	t := report.NewTable("technique (§IV)", "quantity", "naive / off", "optimized / on", "gain")

	// 1. Exponent-range locality vs naive full-range padding (§IV-A):
	// 2100-bit operands and 2100²-slice computation vs the block's actual
	// width times the slices actually applied.
	naiveOps := 2100 * 2100
	optOps := base.Planes() * baseSt.VectorSlicesApplied
	t.Add("exponent locality + termination", "bit-slice products per MVM",
		fmt.Sprintf("%d (4.4M worst case)", naiveOps), optOps,
		fmt.Sprintf("%.0fx", float64(naiveOps)/float64(optOps)))
	t.Add("exponent locality", "operand width [bits]",
		2100, block.StoredBits(),
		fmt.Sprintf("%.0fx", 2100/float64(block.StoredBits())))

	// 2. Vector range locality + early termination (§IV-B). The naive
	// fixed-point emulation applies all 127 vector bit slices; range
	// locality narrows the vector operand, and termination stops at the
	// worst column's settle point (the §III-B footnote bound). Individual
	// columns retire earlier still — the mean drives ADC energy.
	_, fullSt := run(func(c *core.ClusterConfig) { c.DisableEarlyTermination = true })
	meanUsed := 0.0
	for _, u := range baseSt.ColumnSlicesUsed {
		meanUsed += float64(u)
	}
	meanUsed /= float64(len(baseSt.ColumnSlicesUsed))
	t.Add("vector range locality + termination", "vector slices (worst column)",
		127, baseSt.VectorSlicesApplied,
		fmt.Sprintf("%.2fx", 127/float64(baseSt.VectorSlicesApplied)))
	t.Add("early termination", "vector slices (mean column)",
		fmt.Sprintf("%d (full width)", fullSt.VectorSlicesApplied),
		fmt.Sprintf("%.1f", meanUsed),
		fmt.Sprintf("%.2fx", float64(fullSt.VectorSlicesApplied)/meanUsed))
	naiveConv := uint64(127) * uint64(base.Planes()) * uint64(rows)
	t.Add("early termination", "ADC conversions",
		naiveConv, baseSt.Conversions,
		fmt.Sprintf("%.2fx", float64(naiveConv)/float64(baseSt.Conversions)))

	// 3. Computational invert coding (§V-B2): one ADC bit.
	noCIC, _ := run(func(c *core.ClusterConfig) { c.CIC = false })
	t.Add("computational invert coding", "ADC resolution [bits]",
		noCIC.ADCResolution(), base.ADCResolution(), "1 bit (exponential ADC share)")

	// 4. ADC headstart (§V-B2): SAR bit decisions.
	_, noHS := run(func(c *core.ClusterConfig) { c.Headstart = false })
	t.Add("ADC headstart", "SAR bit decisions",
		noHS.ConversionBits, baseSt.ConversionBits,
		fmt.Sprintf("%.2fx", float64(noHS.ConversionBits)/float64(baseSt.ConversionBits)))

	// 5. AN code overhead (§IV-E): planes with vs without protection.
	bare := block.Code.UnsignedBits()
	t.Add("AN code (A=251)", "bit-slice crossbars",
		fmt.Sprintf("%d (unprotected)", bare), base.Planes(),
		fmt.Sprintf("+%.1f%% area/energy", 100*float64(base.Planes()-bare)/float64(bare)))

	emit(t, opt)

	// 6. Scheduling policy. The skip opportunity is the triangle of
	// (matrix slice, vector slice) products below the mantissa cutoff;
	// use the mean-column termination point as the illustrative cutoff.
	cutoff := base.Planes() + baseSt.VectorSlicesTotal - 1 - (53 + 12)
	if cutoff < 0 {
		cutoff = 0
	}
	fmt.Printf("\nscheduling with the mantissa cutoff at significance %d (%d planes x %d slices):\n",
		cutoff, base.Planes(), baseSt.VectorSlicesTotal)
	t2 := report.NewTable("policy", "activations", "steps", "energy proxy", "latency proxy")
	_, v := core.PlanSchedule(core.Vertical, base.Planes(), baseSt.VectorSlicesTotal, cutoff, 0)
	for _, pc := range []struct {
		p     core.Policy
		bands int
		name  string
	}{
		{core.Vertical, 0, "vertical"},
		{core.Hybrid, 2, "hybrid(2) [evaluation choice]"},
		{core.Hybrid, 8, "hybrid(8)"},
		{core.Diagonal, 0, "diagonal"},
	} {
		_, st := core.PlanSchedule(pc.p, base.Planes(), baseSt.VectorSlicesTotal, cutoff, pc.bands)
		t2.Add(pc.name, st.Activations, st.Steps,
			fmt.Sprintf("%.2f", float64(st.Activations)/float64(v.Activations)),
			fmt.Sprintf("%.2f", float64(st.Steps)/float64(v.Steps)))
	}
	if opt.csv {
		t2.CSV(os.Stdout)
	} else {
		t2.Fprint(os.Stdout)
	}
	fmt.Println()
	report.Histogram(os.Stdout,
		"per-column early-termination points (vector slices used, of "+
			fmt.Sprintf("%d", baseSt.VectorSlicesTotal)+")",
		baseSt.ColumnSlicesUsed, 6)
	return nil
}

// runDirect quantifies the §II-B direct-vs-iterative argument: Cholesky
// fill-in on the SPD workloads (reduced size; factorization cost grows
// superlinearly) against the fill-free memory of the iterative solvers.
func runDirect(opt *options) error {
	t := report.NewTable("matrix", "rows", "nnz(A)", "nnz(L) natural", "fill", "nnz(L) RCM", "fill RCM", "CSR memory", "factor memory")
	for _, spec := range matgen.Catalog() {
		if !spec.SPD {
			continue
		}
		scale := 1200.0 / float64(spec.Rows)
		m := spec.GenerateScaled(scale)
		nat, err := direct.Cholesky(m, direct.Natural)
		if err != nil {
			fmt.Printf("%s: %v\n", spec.Name, err)
			continue
		}
		rcm, err := direct.Cholesky(m, direct.RCM)
		if err != nil {
			return err
		}
		csrBytes := m.NNZ()*12 + m.Rows()*4
		facBytes := rcm.NNZ()*12 + m.Rows()*4
		t.Add(spec.Name, m.Rows(), m.NNZ(),
			nat.NNZ(), fmt.Sprintf("%.1fx", direct.FillIn(m, nat)),
			rcm.NNZ(), fmt.Sprintf("%.1fx", direct.FillIn(m, rcm)),
			report.SI(float64(csrBytes), "B"), report.SI(float64(facBytes), "B"))
	}
	emit(t, opt)
	fmt.Println("\n§II-B: direct methods fill in; iterative methods keep the matrix intact —")
	fmt.Println("the reason the accelerator targets Krylov solvers (and why the crossbars can")
	fmt.Println("be programmed once per solve, §VIII-E).")
	return nil
}
