package main

import (
	"fmt"

	"memsci/internal/accel"
	"memsci/internal/device"
	"memsci/internal/montecarlo"
	"memsci/internal/report"
)

// runReliability demonstrates the closed reliability loop (§IV-E applied
// online): a TaOx engine with retention drift and a sprinkling of stuck
// cells is aged through a ladder of time steps, once open-loop and once
// with the AN-code-driven refresh policy armed. Open-loop, MVM accuracy
// decays monotonically with drift; closed-loop, the rising windowed
// detection rate triggers cluster re-programming and accuracy snaps back
// to the freshly programmed level, at a write energy cost the table
// reports. Both runs are deterministic functions of -seed.
func runReliability(opt *options) error {
	study, err := montecarlo.DefaultStudy(1, opt.seed)
	if err != nil {
		return err
	}
	study.Parallelism = opt.par

	// Drift-dominated device: near-linear conductance decay over the
	// scenario's hours (drift factor (1+t/τ)^−ν ≈ 1 − ν·t/τ for t ≪ τ),
	// so the open-loop degradation is visible step over step. Stuck-at
	// faults are left out of the demo on purpose — they are permanent
	// and would put an unhealable floor under both runs (the property
	// tests cover them).
	dev := device.TaOx()
	dev.ProgError = 0.002
	dev.Faults = device.Faults{
		DriftNu:  1,
		DriftTau: 1.44e5, // seconds; ~5% conductance loss per 2h step
	}

	sc := montecarlo.ScenarioConfig{
		Device:        dev,
		Seed:          opt.seed,
		Steps:         6,
		StepSeconds:   7200,
		ProbesPerStep: 8,
	}
	open, err := study.RunScenario(sc)
	if err != nil {
		return err
	}
	policy := accel.DefaultRefreshPolicy()
	sc.Policy = &policy
	closed, err := study.RunScenario(sc)
	if err != nil {
		return err
	}

	t := report.NewTable("step", "t [h]", "open maxrel", "open detect",
		"closed maxrel", "closed detect", "refreshes")
	for i := range open.Steps {
		o, c := open.Steps[i], closed.Steps[i]
		t.Add(
			fmt.Sprintf("%d", o.Step),
			fmt.Sprintf("%.1f", o.TimeSeconds/3600),
			fmt.Sprintf("%.2e", o.MaxRel),
			fmt.Sprintf("%.3f", o.DetectedRate),
			fmt.Sprintf("%.2e", c.MaxRel),
			fmt.Sprintf("%.3f", c.DetectedRate),
			fmt.Sprintf("%d", c.Refreshes),
		)
	}
	emit(t, opt)

	fmt.Printf("\nopen-loop:   maxrel %.2e -> %.2e, final CG true residual %.2e (clean %.2e)\n",
		open.CleanRel, open.FinalRel, open.FinalSolveRel, open.CleanSolveRel)
	fmt.Printf("closed-loop: maxrel %.2e -> %.2e, final CG true residual %.2e\n",
		closed.CleanRel, closed.FinalRel, closed.FinalSolveRel)
	fmt.Printf("refresh work: %d refreshes, %d cells reprogrammed, %.2f uJ, %.2f ms write time\n",
		closed.Refresh.Refreshes, closed.Refresh.CellsReprogrammed,
		closed.Refresh.WriteEnergyJoules*1e6, closed.Refresh.WriteTimeSeconds*1e3)
	fmt.Println("\nretention drift degrades open-loop accuracy monotonically; the AN-code refresh loop detects and re-programs degraded clusters, restoring accuracy at a bounded write-energy cost")
	return nil
}
