package main

import (
	"fmt"
	"os"

	"memsci/internal/device"
	"memsci/internal/montecarlo"
	"memsci/internal/report"
)

// The Monte-Carlo sensitivity studies of Figures 12 and 13 run CG over
// the *functional* accelerator engine — every dot product goes through
// the bit-exact crossbar pipeline with the device-error model enabled —
// on a small SPD system, and report the iteration count normalized to the
// reference configuration, over -trials repetitions (paper: 100). The
// mechanics live in internal/montecarlo.

type mcConfig struct {
	label string
	dev   device.Params
}

func runMC(opt *options, title, paperNote string, baseline mcConfig, configs []mcConfig) error {
	study, err := montecarlo.DefaultStudy(opt.trials, opt.seed)
	if err != nil {
		return err
	}
	study.Parallelism = opt.par
	baseMean, err := study.Baseline(baseline.dev)
	if err != nil {
		return err
	}

	t := report.NewTable("configuration", "min", "mean", "max", "not converged")
	var labels []string
	var means []float64
	for _, cfg := range configs {
		st, err := study.Sweep(cfg.label, cfg.dev, baseMean)
		if err != nil {
			return err
		}
		t.Add(cfg.label,
			fmt.Sprintf("%.2f", st.Min),
			fmt.Sprintf("%.2f", st.Mean),
			fmt.Sprintf("%.2f", st.Max),
			st.FailedOfTrials)
		labels = append(labels, cfg.label)
		means = append(means, st.Mean)
	}
	emit(t, opt)
	fmt.Println()
	report.Bars(os.Stdout, title+" — mean normalized iteration count", labels, means, "x")
	fmt.Println("\n" + paperNote)
	return nil
}

// runFig12 sweeps bits per cell × cell dynamic range (Figure 12).
func runFig12(opt *options) error {
	dev := func(bits int, rng float64) device.Params {
		d := device.TaOx()
		d.BitsPerCell = bits
		d.DynamicRange = rng
		// Nominal residual programming noise after program-and-verify
		// (well inside the precision reported by Alibart et al. [58]).
		d.ProgError = 0.002
		return d
	}
	baseline := mcConfig{"B=1 D=1.5K", dev(1, 1500)}
	configs := []mcConfig{
		{"B=1 D=0.75K", dev(1, 750)},
		{"B=1 D=1.5K", dev(1, 1500)},
		{"B=1 D=3K", dev(1, 3000)},
		{"B=2 D=0.75K", dev(2, 750)},
		{"B=2 D=1.5K", dev(2, 1500)},
		{"B=2 D=3K", dev(2, 3000)},
	}
	return runMC(opt, "Figure 12",
		"paper: single-bit cells show effectively no sensitivity to dynamic range; two-bit cells at low range hinder convergence",
		baseline, configs)
}

// runFig13 sweeps bits per cell × programming error (Figure 13).
func runFig13(opt *options) error {
	dev := func(bits int, e float64) device.Params {
		d := device.TaOx()
		d.BitsPerCell = bits
		d.ProgError = e
		return d
	}
	baseline := mcConfig{"B=1 E=0%", dev(1, 0)}
	configs := []mcConfig{
		{"B=1 E=1%", dev(1, 0.01)},
		{"B=1 E=3%", dev(1, 0.03)},
		{"B=1 E=5%", dev(1, 0.05)},
		{"B=2 E=1%", dev(2, 0.01)},
		{"B=2 E=3%", dev(2, 0.03)},
		{"B=2 E=5%", dev(2, 0.05)},
	}
	return runMC(opt, "Figure 13",
		"paper: single-bit cells tolerate programming error up to ~5%; multi-bit cells degrade sooner",
		baseline, configs)
}
