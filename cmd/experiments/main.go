// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII-VIII) on the synthetic stand-in workloads:
//
//	experiments -run table1      accelerator configuration (Table I)
//	experiments -run table2      matrix set + blocking efficiency (Table II)
//	experiments -run table3      crossbar area/energy/latency (Table III)
//	experiments -run fig6        activation scheduling policies (Figure 6)
//	experiments -run fig7        blocking patterns, Pres_Poisson + xenon1 (Figure 7)
//	experiments -run fig8        speedup over the GPU baseline (Figure 8)
//	experiments -run fig9        energy vs the GPU baseline (Figure 9)
//	experiments -run fig10       preprocessing + write overhead (Figure 10)
//	experiments -run fig11       ns3Da blocking breakdown (Figure 11)
//	experiments -run fig12       sensitivity to cell dynamic range (Figure 12)
//	experiments -run fig13       sensitivity to programming error (Figure 13)
//	experiments -run area        system area footprint (§VIII-C)
//	experiments -run endurance   system lifetime (§VIII-E)
//	experiments -run reliability drift -> AN detection -> online refresh loop (§IV-E)
//	experiments -run ablation    per-technique gains (§IV, §V-B2)
//	experiments -run direct      direct-method fill-in (§II-B)
//	experiments -run motivation  low-precision datapaths stall (§I)
//	experiments -run mixedprec   mixed-precision iterative refinement vs full precision
//	experiments -run all         everything above
//
// Results print as aligned tables and ASCII bar charts; -csv switches the
// tabular output to CSV. Full-size workload generation plus modeling runs
// in seconds; the Monte-Carlo figures honor -trials and fan their trials
// out over -par worker goroutines (default: GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"memsci/internal/obs"
)

type options struct {
	run     string
	csv     bool
	trials  int
	scale   float64
	seed    int64
	measure bool
	par     int
	trace   string
	gate    string

	traceMu   sync.Mutex
	traceFile *os.File
}

// dumpTrace appends one solve's per-iteration JSONL rows to the -trace
// file (lazily created; a no-op when -trace is unset). Serialized so
// experiments that solve from worker goroutines interleave whole traces
// rather than torn lines.
func (o *options) dumpTrace(t *obs.SolveTrace) error {
	if o.trace == "" {
		return nil
	}
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	if o.traceFile == nil {
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		o.traceFile = f
	}
	return t.WriteJSONL(o.traceFile)
}

func (o *options) closeTrace() {
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	if o.traceFile != nil {
		o.traceFile.Close()
		o.traceFile = nil
	}
}

func main() {
	var opt options
	flag.StringVar(&opt.run, "run", "all", "experiment to run (table1|table2|table3|fig6..fig13|area|endurance|reliability|ablation|direct|motivation|mixedprec|all)")
	flag.BoolVar(&opt.csv, "csv", false, "emit tables as CSV")
	flag.IntVar(&opt.trials, "trials", 12, "Monte-Carlo trials for fig12/fig13 (paper: 100)")
	flag.Float64Var(&opt.scale, "scale", 1.0, "matrix scale factor for the modeling experiments")
	flag.Int64Var(&opt.seed, "seed", 1, "Monte-Carlo base seed")
	flag.BoolVar(&opt.measure, "measure-iters", false, "measure solver iteration counts on scaled stand-ins instead of using the catalog counts")
	flag.IntVar(&opt.par, "par", 0, "worker goroutines for Monte-Carlo trials and cluster execution (0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&opt.trace, "trace", "", "write per-iteration solver traces (JSONL) from the numeric solves (-measure-iters, motivation) to this file")
	flag.StringVar(&opt.gate, "gate", "", "mixedprec only: path to the committed ADC-conversion-ratio threshold file; exit nonzero when accuracy or the ratio misses it")
	flag.Parse()
	defer opt.closeTrace()

	runs := map[string]func(*options) error{
		"table1":      runTable1,
		"table2":      runTable2,
		"table3":      runTable3,
		"fig6":        runFig6,
		"fig7":        runFig7,
		"fig8":        runFig8,
		"fig9":        runFig9,
		"fig10":       runFig10,
		"fig11":       runFig11,
		"fig12":       runFig12,
		"ablation":    runAblation,
		"motivation":  runMotivation,
		"direct":      runDirect,
		"fig13":       runFig13,
		"area":        runArea,
		"endurance":   runEndurance,
		"reliability": runReliability,
		"mixedprec":   runMixedprec,
	}
	order := []string{"table1", "table2", "table3", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "area", "endurance",
		"reliability", "ablation", "direct", "motivation", "mixedprec"}

	names := []string{opt.run}
	if opt.run == "all" {
		names = order
	}
	for _, n := range names {
		f, ok := runs[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", n)
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", strings.ToUpper(n))
		if err := f(&opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
