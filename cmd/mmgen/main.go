// Command mmgen writes catalog stand-in matrices to MatrixMarket files so
// they can be inspected or consumed by external tools.
//
//	mmgen -matrix Pres_Poisson -o pres_poisson.mtx
//	mmgen -matrix torso2 -scale 0.1 -o torso2_small.mtx
//	mmgen -all -scale 0.01 -dir ./matrices
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"memsci"
	"memsci/internal/sparse"
)

func main() {
	var (
		name  = flag.String("matrix", "", "catalog matrix name")
		out   = flag.String("o", "", "output file (default <name>.mtx)")
		scale = flag.Float64("scale", 1.0, "scale factor")
		all   = flag.Bool("all", false, "emit every catalog matrix")
		dir   = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	write := func(spec memsci.MatrixSpec, path string) error {
		var m *memsci.CSR
		if *scale >= 1 {
			m = spec.Generate()
		} else {
			m = spec.GenerateScaled(*scale)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		comment := fmt.Sprintf("synthetic stand-in for SuiteSparse %s (%s)\nscale %g, %d nnz",
			spec.Name, spec.Domain, *scale, m.NNZ())
		if err := sparse.WriteMatrixMarket(f, m, comment); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %dx%d, %d nnz\n", path, m.Rows(), m.Cols(), m.NNZ())
		return nil
	}

	switch {
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, spec := range memsci.Catalog() {
			if err := write(spec, filepath.Join(*dir, spec.Name+".mtx")); err != nil {
				log.Fatal(err)
			}
		}
	case *name != "":
		spec, err := memsci.MatrixByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		path := *out
		if path == "" {
			path = spec.Name + ".mtx"
		}
		if err := write(spec, path); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -matrix <name> or -all")
		os.Exit(2)
	}
}
