// Command memsim runs one matrix end to end through the accelerator
// pipeline: workload generation (or MatrixMarket input), heterogeneous
// blocking, capacity-aware mapping, the performance/energy comparison
// against the Tesla P100 baseline, and — optionally — a functional
// (bit-exact) solve on simulated crossbars.
//
//	memsim -matrix torso2                      # catalog stand-in, model only
//	memsim -matrix qa8fm -scale 0.05 -solve    # reduced size + functional solve
//	memsim -mm path/to/matrix.mtx -solve       # external MatrixMarket input
//	memsim -list                               # show the Table II catalog
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"memsci"
	"memsci/internal/obs"
	"memsci/internal/report"
	"memsci/internal/sparse"
)

func main() {
	var (
		name   = flag.String("matrix", "", "catalog matrix name (see -list)")
		mmPath = flag.String("mm", "", "MatrixMarket file to load instead of a catalog matrix")
		scale  = flag.Float64("scale", 1.0, "matrix scale factor (catalog matrices only)")
		solve  = flag.Bool("solve", false, "run a functional bit-exact solve on the simulated crossbars")
		iters  = flag.Int("iters", 0, "solver iteration count for the model (0 = catalog value or 1000)")
		tol    = flag.Float64("tol", 1e-8, "relative residual tolerance for -solve")
		trace  = flag.String("trace", "", "with -solve: write the per-iteration trace (residual, wall-clock, hardware-counter deltas) as JSONL to this file")
		list   = flag.Bool("list", false, "list the catalog matrices and exit")
	)
	flag.Parse()

	if *list {
		t := report.NewTable("name", "rows", "nnz", "nnz/row", "spd", "domain", "paper blocked")
		for _, s := range memsci.Catalog() {
			t.Add(s.Name, s.Rows, s.NNZ,
				fmt.Sprintf("%.1f", float64(s.NNZ)/float64(s.Rows)),
				s.SPD, s.Domain, fmt.Sprintf("%.1f%%", s.PaperBlocked*100))
		}
		t.Fprint(os.Stdout)
		return
	}

	var (
		m        *memsci.CSR
		spd      bool
		bicg     bool
		modelIts = *iters
		label    string
	)
	switch {
	case *mmPath != "":
		f, err := os.Open(*mmPath)
		if err != nil {
			log.Fatal(err)
		}
		coo, _, err := sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		m = coo.ToCSR()
		spd = m.IsSymmetric(1e-12)
		bicg = !spd
		label = *mmPath
		if modelIts == 0 {
			modelIts = 1000
		}
	case *name != "":
		spec, err := memsci.MatrixByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		if *scale >= 1 {
			m = spec.Generate()
		} else {
			m = spec.GenerateScaled(*scale)
		}
		spd = spec.SPD
		bicg = !spec.SPD
		label = spec.Name
		if modelIts == 0 {
			modelIts = spec.SolveIters
		}
	default:
		fmt.Fprintln(os.Stderr, "need -matrix or -mm (use -list to see the catalog)")
		os.Exit(2)
	}

	fmt.Printf("%s: %dx%d, %d nnz (%.1f per row)\n",
		label, m.Rows(), m.Cols(), m.NNZ(), float64(m.NNZ())/float64(m.Rows()))

	sys := memsci.NewSystem()
	ev, err := memsci.Evaluate(label, m, bicg, modelIts, sys)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("metric", "value")
	t.Add("blocking efficiency", fmt.Sprintf("%.1f%%", ev.Blocked*100))
	for _, size := range []int{512, 256, 128, 64} {
		ss := ev.Plan.Stats.PerSize[size]
		if ss.Blocks > 0 {
			t.Add(fmt.Sprintf("  %d-blocks", size), fmt.Sprintf("%d (%d nnz)", ss.Blocks, ss.NNZ))
		}
	}
	t.Add("unblocked nnz", ev.Plan.Unblocked.NNZ())
	t.Add("preprocessing passes", fmt.Sprintf("%.2f per nnz", ev.Plan.Stats.Passes()))
	t.Add("execution target", ev.Target.String())
	solverName := "CG"
	if bicg {
		solverName = "BiCG-STAB"
	}
	t.Add("solver / iterations", fmt.Sprintf("%s / %d", solverName, ev.Iters))
	t.Add("GPU iteration", report.SI(ev.GPUIterTime, "s"))
	t.Add("accelerator iteration", report.SI(ev.AccelIterTime, "s"))
	t.Add("preprocess + write", report.SI(ev.PreprocessTime, "s")+" + "+report.SI(ev.WriteTime, "s"))
	t.Add("speedup (Fig. 8)", fmt.Sprintf("%.2fx", ev.Speedup()))
	t.Add("energy vs GPU (Fig. 9)", fmt.Sprintf("%.4f (%.1fx better)", ev.EnergyRatio(), 1/ev.EnergyRatio()))
	t.Add("init overhead (Fig. 10)", fmt.Sprintf("%.2f%%", ev.InitOverhead()*100))
	eb := ev.Mapped.SpMVEnergyBreakdown()
	t.Add("SpMV energy split", fmt.Sprintf("array %s, ADC %s, local %s, mem %s, static %s",
		report.SI(eb.Array, "J"), report.SI(eb.ADC, "J"), report.SI(eb.Local, "J"),
		report.SI(eb.Memory, "J"), report.SI(eb.Static, "J")))
	t.Fprint(os.Stdout)

	if !*solve {
		return
	}
	if m.NNZ() > 2_000_000 {
		fmt.Println("\n(functional solve skipped: matrix too large for bit-exact simulation; use -scale)")
		return
	}
	fmt.Println("\nfunctional bit-exact solve on simulated crossbars:")
	if _, err := memsci.JacobiScale(m, spd); err != nil {
		log.Fatal(err)
	}
	plan, err := memsci.Preprocess(m)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := memsci.NewEngine(plan, memsci.DefaultClusterConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	opt := memsci.DefaultSolveOptions()
	opt.Tol = *tol
	opt.MaxIter = 20000
	method := memsci.MethodBiCGSTAB
	methodName := "bicgstab"
	if spd {
		method = memsci.MethodCG
		methodName = "cg"
	}
	var rec *obs.Recorder
	if *trace != "" {
		rec = obs.NewRecorder(engine.HWCounters)
		opt.Monitor = rec.Observe
	}
	res, err := memsci.SolveOn(engine, memsci.Ones(m.Rows()), method, spd, opt)
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		t := rec.Finish(res.Converged, res.Residual)
		t.Label, t.Method, t.Backend = label, methodName, "accel"
		t.Rows, t.NNZ = m.Rows(), m.NNZ()
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %d iteration samples to %s\n", len(t.Iterations), *trace)
	}
	fmt.Printf("  converged=%v iterations=%d residual=%.2e\n", res.Converged, res.Iterations, res.Residual)
	st := engine.Stats()
	fmt.Printf("  %d cluster ops, %d slices applied, %d conversions, AN accuracy %.4f%%\n",
		st.Ops, st.VectorSlicesApplied, st.Conversions, st.AN.Accuracy()*100)
}
