// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (run `go test -bench=. -benchmem`), plus
// micro-benchmarks of the core kernels. The table/figure benchmarks
// measure the cost of regenerating the corresponding result on this
// machine and report the headline quantity as a custom metric, so a bench
// run doubles as a compact reproduction log:
//
//	BenchmarkFig8Speedup    reports geomean_speedup_x (paper: 10.3)
//	BenchmarkFig9Energy     reports mean_energy_improvement_x (paper: 10.9)
//	...
//
// The cmd/experiments binary prints the full per-matrix tables.
package memsci_test

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"memsci"
	"memsci/internal/accel"
	"memsci/internal/blocking"
	"memsci/internal/core"
	"memsci/internal/device"
	"memsci/internal/direct"
	"memsci/internal/energy"
	"memsci/internal/gpu"
	"memsci/internal/lowprec"
	"memsci/internal/matgen"
	"memsci/internal/montecarlo"
	"memsci/internal/obs"
	"memsci/internal/report"
	"memsci/internal/serve"
	"memsci/internal/solver"
	"memsci/internal/sparse"
)

// benchScale keeps full-catalog benchmarks tractable; the experiments
// binary runs at full size.
const benchScale = 0.1

func geoMean(v []float64) float64 { return report.GeoMean(v) }

// evaluateBenchCatalog runs the Fig. 8/9/10 model over the scaled catalog.
func evaluateBenchCatalog(b *testing.B) []*accel.Evaluation {
	b.Helper()
	sys := accel.NewSystem()
	var evals []*accel.Evaluation
	for _, spec := range matgen.Catalog() {
		m := spec.GenerateScaled(benchScale)
		ev, err := accel.Evaluate(spec.Name, m, !spec.SPD, spec.SolveIters, sys)
		if err != nil {
			b.Fatal(err)
		}
		evals = append(evals, ev)
	}
	return evals
}

// ---- Table II: matrix set + blocking efficiency ----

func BenchmarkTable2Blocking(b *testing.B) {
	specs := matgen.Catalog()
	var eff float64
	for i := 0; i < b.N; i++ {
		eff = 0
		for _, spec := range specs {
			m := spec.GenerateScaled(benchScale)
			plan, err := blocking.Preprocess(m, blocking.DefaultSubstrate())
			if err != nil {
				b.Fatal(err)
			}
			eff += plan.Stats.Efficiency()
		}
	}
	b.ReportMetric(eff/float64(len(specs))*100, "mean_blocked_%")
}

// ---- Table III: crossbar area/energy/latency model ----

func BenchmarkTable3CrossbarSizes(b *testing.B) {
	cfg := energy.Default()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, size := range []int{64, 128, 256, 512} {
			sink += cfg.XbarArea(size) + cfg.XbarOpEnergy(size) + cfg.XbarOpLatency(size)
		}
	}
	b.ReportMetric(cfg.XbarOpEnergy(512)*1e12, "xbar512_pJ")
	_ = sink
}

// ---- Figure 6: activation scheduling ----

func BenchmarkFig6Scheduling(b *testing.B) {
	var saved int
	for i := 0; i < b.N; i++ {
		_, v := core.PlanSchedule(core.Vertical, 127, 64, 100, 0)
		_, h := core.PlanSchedule(core.Hybrid, 127, 64, 100, 2)
		saved = v.Activations - h.Activations
	}
	b.ReportMetric(float64(saved), "activations_saved_hybrid")
}

// ---- Figure 7/11: blocking patterns ----

func BenchmarkFig7BlockingPatterns(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"Pres_Poisson", "xenon1"} {
			spec, _ := matgen.ByName(name)
			m := spec.GenerateScaled(benchScale)
			plan, err := blocking.Preprocess(m, blocking.DefaultSubstrate())
			if err != nil {
				b.Fatal(err)
			}
			eff = plan.Stats.Efficiency()
		}
	}
	b.ReportMetric(eff*100, "xenon1_blocked_%")
}

func BenchmarkFig11UnblockableMatrix(b *testing.B) {
	spec, _ := matgen.ByName("ns3Da")
	var eff float64
	for i := 0; i < b.N; i++ {
		m := spec.GenerateScaled(0.5)
		plan, err := blocking.Preprocess(m, blocking.DefaultSubstrate())
		if err != nil {
			b.Fatal(err)
		}
		eff = plan.Stats.Efficiency()
	}
	b.ReportMetric(eff*100, "ns3Da_blocked_%")
}

// ---- Figure 8: speedup over the GPU baseline ----

func BenchmarkFig8Speedup(b *testing.B) {
	var gm float64
	for i := 0; i < b.N; i++ {
		evals := evaluateBenchCatalog(b)
		var s []float64
		for _, ev := range evals {
			s = append(s, ev.Speedup())
		}
		gm = geoMean(s)
	}
	b.ReportMetric(gm, "geomean_speedup_x")
}

// ---- Figure 9: energy vs the GPU baseline ----

func BenchmarkFig9Energy(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		evals := evaluateBenchCatalog(b)
		var inv []float64
		for _, ev := range evals {
			inv = append(inv, 1/ev.EnergyRatio())
		}
		imp = geoMean(inv)
	}
	b.ReportMetric(imp, "energy_improvement_x")
}

// ---- Figure 10: preprocessing + write overhead ----

func BenchmarkFig10Overhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, ev := range evaluateBenchCatalog(b) {
			if ev.Target == accel.OnAccelerator && ev.InitOverhead() > worst {
				worst = ev.InitOverhead()
			}
		}
	}
	b.ReportMetric(worst*100, "worst_init_overhead_%")
}

// ---- Figures 12/13: Monte-Carlo device sensitivity (one trial each) ----

func mcBenchRun(b *testing.B, dev device.Params, seed int64) int {
	b.Helper()
	study, err := montecarlo.DefaultStudy(1, seed)
	if err != nil {
		b.Fatal(err)
	}
	it, err := study.Run(dev, seed)
	if err != nil {
		b.Fatal(err)
	}
	return it
}

func BenchmarkFig12DynamicRange(b *testing.B) {
	base := device.TaOx()
	stressed := device.TaOx()
	stressed.BitsPerCell = 2
	stressed.DynamicRange = 750
	var ratio float64
	for i := 0; i < b.N; i++ {
		ref := mcBenchRun(b, base, int64(i))
		bad := mcBenchRun(b, stressed, int64(i))
		ratio = float64(bad) / float64(ref)
	}
	b.ReportMetric(ratio, "iter_ratio_2bit_750")
}

func BenchmarkFig13ProgError(b *testing.B) {
	base := device.TaOx()
	stressed := device.TaOx()
	stressed.BitsPerCell = 2
	stressed.ProgError = 0.05
	var ratio float64
	for i := 0; i < b.N; i++ {
		ref := mcBenchRun(b, base, int64(i))
		bad := mcBenchRun(b, stressed, int64(i))
		ratio = float64(bad) / float64(ref)
	}
	b.ReportMetric(ratio, "iter_ratio_2bit_5pct")
}

// ---- §VIII-C area and §VIII-E endurance ----

func BenchmarkAreaModel(b *testing.B) {
	cfg := energy.Default()
	var total float64
	for i := 0; i < b.N; i++ {
		total = cfg.SystemArea().Total
	}
	b.ReportMetric(total, "system_mm2")
}

func BenchmarkEndurance(b *testing.B) {
	cfg := energy.Default()
	var years float64
	for i := 0; i < b.N; i++ {
		years = cfg.EnduranceYears(0.05) // 50 ms solve, worst realistic case
	}
	b.ReportMetric(years, "lifetime_years")
}

// ---- Micro-benchmarks: core kernels ----

func BenchmarkClusterMVM64(b *testing.B) {
	spec := matgen.Spec{
		Name: "bench64", Rows: 64, NNZ: 64 * 10, SPD: true, Class: matgen.Banded,
		Band: 32, ExpSpread: 8, Seed: 1, DiagMargin: 0.1,
	}
	m := spec.Generate()
	var coefs []core.Coef
	for i := 0; i < 64; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			coefs = append(coefs, core.Coef{Row: i, Col: m.ColIdx[k], Val: m.Vals[k]})
		}
	}
	blk, err := core.NewBlock(64, 64, coefs, core.MaxPadBits)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := core.NewCluster(blk, core.DefaultClusterConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := sparse.Ones(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.MulVec(x); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine builds a functional engine over a banded system large
// enough to program a few dozen clusters.
func benchEngine(b *testing.B, par int) (*accel.Engine, []float64, []float64) {
	b.Helper()
	spec := matgen.Spec{
		Name: "bench_par", Rows: 768, NNZ: 768 * 12, SPD: true, Class: matgen.Banded,
		Band: 48, ExpSpread: 8, Seed: 21, DiagMargin: 0.1,
	}
	m := spec.Generate()
	sub := blocking.Substrate{
		Sizes:     []int{64},
		MaxPad:    core.MaxPadBits,
		Threshold: func(int) int { return 16 },
	}
	plan, err := blocking.Preprocess(m, sub)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := accel.NewEngine(plan, core.DefaultClusterConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	eng.Parallelism = par
	xrng := rand.New(rand.NewSource(4))
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = xrng.NormFloat64()
	}
	return eng, make([]float64, m.Rows()), x
}

// BenchmarkEngineApplySerial vs BenchmarkEngineApplyParallel measure the
// wall-clock effect of fanning cluster MVMs out across GOMAXPROCS
// workers (results are bit-identical; see the accel equivalence test).
// On a >= 4-core host the parallel variant runs >= 2x faster.
func BenchmarkEngineApplySerial(b *testing.B) {
	eng, y, x := benchEngine(b, 1)
	b.ReportMetric(float64(eng.Clusters()), "clusters")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Apply(y, x)
	}
}

func BenchmarkEngineApplyParallel(b *testing.B) {
	eng, y, x := benchEngine(b, runtime.GOMAXPROCS(0))
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Apply(y, x)
	}
}

// BenchmarkEngineSolveMonitor pins the telemetry overhead on solves at
// BenchmarkEngineApplyParallel scale: "none" exercises the nil-Monitor
// fast path (one predictable branch per iteration — the acceptance bound
// is <= 5% vs the pre-hook solver, and the branch is orders of magnitude
// below that), "recorder" attaches the full obs.Recorder including
// per-iteration hardware-counter sampling.
func BenchmarkEngineSolveMonitor(b *testing.B) {
	run := func(b *testing.B, attach bool) {
		eng, _, _ := benchEngine(b, runtime.GOMAXPROCS(0))
		rhs := sparse.Ones(eng.Rows())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt := solver.Options{Tol: 1e-8, MaxIter: 40}
			var rec *obs.Recorder
			if attach {
				rec = obs.NewRecorder(eng.HWCounters)
				opt.Monitor = rec.Observe
			}
			res, err := solver.CG(eng, rhs, opt)
			if err != nil {
				b.Fatal(err)
			}
			if attach {
				rec.Finish(res.Converged, res.Residual)
			}
		}
	}
	b.Run("none", func(b *testing.B) { run(b, false) })
	b.Run("recorder", func(b *testing.B) { run(b, true) })
}

// BenchmarkNewEngineParallel measures concurrent block programming (the
// O(M·N·planes) big.Int encode loop dominates engine setup).
func BenchmarkNewEngineParallel(b *testing.B) {
	spec := matgen.Spec{
		Name: "bench_prog", Rows: 768, NNZ: 768 * 12, SPD: true, Class: matgen.Banded,
		Band: 48, ExpSpread: 8, Seed: 21, DiagMargin: 0.1,
	}
	m := spec.Generate()
	sub := blocking.Substrate{
		Sizes:     []int{64},
		MaxPad:    core.MaxPadBits,
		Threshold: func(int) int { return 16 },
	}
	plan, err := blocking.Preprocess(m, sub)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := accel.NewEngine(plan, core.DefaultClusterConfig(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRSpMV(b *testing.B) {
	spec, _ := matgen.ByName("torso2")
	m := spec.GenerateScaled(0.2)
	x := sparse.Ones(m.Cols())
	y := make([]float64, m.Rows())
	b.SetBytes(int64(m.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
}

func BenchmarkPreprocess(b *testing.B) {
	spec, _ := matgen.ByName("qa8fm")
	m := spec.GenerateScaled(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blocking.Preprocess(m, blocking.DefaultSubstrate()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixGeneration(b *testing.B) {
	spec, _ := matgen.ByName("nasasrb")
	for i := 0; i < b.N; i++ {
		m := spec.GenerateScaled(0.25)
		if m.NNZ() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkCGSolve(b *testing.B) {
	spec, _ := matgen.ByName("crystm03")
	m := spec.GenerateScaled(0.05)
	if _, err := m.JacobiScale(true); err != nil {
		b.Fatal(err)
	}
	rhs := sparse.Ones(m.Rows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.CG(solver.CSROperator{M: m}, rhs, solver.Options{Tol: 1e-8, MaxIter: 5000})
		if err != nil || !res.Converged {
			b.Fatalf("cg: %v converged=%v", err, res != nil && res.Converged)
		}
	}
}

func BenchmarkGPUModel(b *testing.B) {
	model := gpu.P100()
	shape := gpu.MatrixShape{Rows: 100000, Cols: 100000, NNZ: 2e6, ScatterFrac: 0.2}
	var t float64
	for i := 0; i < b.N; i++ {
		t = model.IterationTime(shape, false)
	}
	b.ReportMetric(t*1e6, "gpu_iter_us")
}

func BenchmarkEncodeBlock(b *testing.B) {
	vals := make([]float64, 0, 4096)
	for i := 0; i < 4096; i++ {
		vals = append(vals, math.Ldexp(1.5, i%20-10))
	}
	var coefs []core.Coef
	for i, v := range vals {
		coefs = append(coefs, core.Coef{Row: i / 64, Col: i % 64, Val: v})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewBlock(64, 64, coefs, core.MaxPadBits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeEvaluate(b *testing.B) {
	spec, _ := memsci.MatrixByName("wang3")
	m := spec.GenerateScaled(0.5)
	sys := memsci.NewSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := memsci.Evaluate("wang3", m, true, spec.SolveIters, sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyFactor(b *testing.B) {
	spec, _ := matgen.ByName("crystm03")
	m := spec.GenerateScaled(0.04)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := direct.Cholesky(m, direct.RCM)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(direct.FillIn(m, f), "fill_factor")
		}
	}
}

func BenchmarkAblationEarlyTermination(b *testing.B) {
	spec := matgen.Spec{
		Name: "bench_et", Rows: 128, NNZ: 128 * 12, SPD: true, Class: matgen.Banded,
		Band: 64, ExpSpread: 12, Seed: 13, DiagMargin: 0.05,
	}
	m := spec.Generate()
	var coefs []core.Coef
	for i := 0; i < 128; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			coefs = append(coefs, core.Coef{Row: i, Col: m.ColIdx[k], Val: m.Vals[k]})
		}
	}
	blk, err := core.NewBlock(128, 128, coefs, core.MaxPadBits)
	if err != nil {
		b.Fatal(err)
	}
	// A generic (random) input vector: an all-ones vector would slice to a
	// single nonzero bit plane and trivialize the measurement.
	xrng := rand.New(rand.NewSource(2))
	x := make([]float64, 128)
	for i := range x {
		x[i] = xrng.NormFloat64()
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		on, _ := core.NewCluster(blk, core.DefaultClusterConfig())
		if _, err := on.MulVec(x); err != nil {
			b.Fatal(err)
		}
		// Naive fixed-point emulation applies all 127 vector slices to
		// every plane and column (§IV-B).
		naive := uint64(127) * uint64(on.Planes()) * 128
		ratio = float64(naive) / float64(on.Stats().Conversions)
	}
	b.ReportMetric(ratio, "conversions_saved_vs_naive_x")
}

func BenchmarkMotivationLowPrecision(b *testing.B) {
	spec := matgen.Spec{
		Name: "bench_lp", Rows: 400, NNZ: 400 * 10, SPD: true, Class: matgen.Banded,
		Band: 40, ExpSpread: 8, Seed: 55, DiagMargin: 0.05,
	}
	m := spec.Generate()
	rhs := sparse.Ones(m.Rows())
	var floor float64
	for i := 0; i < b.N; i++ {
		op, err := lowprec.New(m, 16, 512)
		if err != nil {
			b.Fatal(err)
		}
		res, err := solver.CG(op, rhs, solver.Options{Tol: 1e-10, MaxIter: 2000})
		if err != nil {
			b.Fatal(err)
		}
		floor = sparse.Norm2(sparse.Residual(m, res.X, rhs)) / sparse.Norm2(rhs)
	}
	b.ReportMetric(floor, "16bit_residual_floor")
}

// ---- memserve engine cache: miss (program) vs hit (lease) ----

func benchServeMatrix(n int) *sparse.CSR {
	spec := matgen.Spec{
		Name: "bench_serve", Rows: n, NNZ: n * 12, SPD: true,
		Class: matgen.Banded, Band: 24, ExpSpread: 8, Seed: 42, DiagMargin: 0.1,
	}
	return spec.Generate()
}

// BenchmarkServeCacheMiss measures the cost a request pays when its
// matrix is not resident: full blocking + cluster programming. Each
// iteration perturbs one value so every fingerprint is unique.
func BenchmarkServeCacheMiss(b *testing.B) {
	m := benchServeMatrix(512)
	c := serve.NewCache(serve.CacheConfig{MaxClusters: 1 << 30}, core.DefaultClusterConfig(), 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Vals[0] = 10 + float64(i)*1e-9
		l, err := c.Acquire(ctx, m)
		if err != nil {
			b.Fatal(err)
		}
		l.Release()
	}
	b.StopTimer()
	if got := c.Stats().Programmings; got != int64(b.N) {
		b.Fatalf("programmings = %d, want %d (every miss programs)", got, b.N)
	}
}

// BenchmarkServeCacheHit measures the steady-state request cost once the
// engine is resident: a fingerprint, one map lookup, and a pool lease.
func BenchmarkServeCacheHit(b *testing.B) {
	m := benchServeMatrix(512)
	c := serve.NewCache(serve.CacheConfig{}, core.DefaultClusterConfig(), 1)
	ctx := context.Background()
	l, err := c.Acquire(ctx, m) // warm the cache
	if err != nil {
		b.Fatal(err)
	}
	l.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := c.Acquire(ctx, m)
		if err != nil {
			b.Fatal(err)
		}
		l.Release()
	}
	b.StopTimer()
	if got := c.Stats().Programmings; got != 1 {
		b.Fatalf("programmings = %d, want 1 (hits program nothing)", got)
	}
}
