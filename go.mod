module memsci

go 1.22
