package memsci_test

import (
	"fmt"

	"memsci"
)

// ExamplePreprocess maps a catalog workload onto the heterogeneous
// crossbar substrate and reports the §V blocking outcome.
func ExamplePreprocess() {
	spec, _ := memsci.MatrixByName("torso2")
	a := spec.GenerateScaled(0.05)
	plan, _ := memsci.Preprocess(a)
	fmt.Printf("blocked %.0f%% of %d nonzeros; %d left for the local processor\n",
		plan.Stats.Efficiency()*100, a.NNZ(), plan.Unblocked.NNZ())
	// Output:
	// blocked 98% of 47586 nonzeros; 1034 left for the local processor
}

// ExampleSolveOn runs CG over the functional (bit-exact) accelerator and
// shows the §VII-C iteration parity with a plain double-precision solve.
func ExampleSolveOn() {
	spec, _ := memsci.MatrixByName("Trefethen_20000")
	a := spec.GenerateScaled(0.01)
	plan, _ := memsci.Preprocess(a)
	engine, _ := memsci.NewEngine(plan, memsci.DefaultClusterConfig(), 1)

	opt := memsci.DefaultSolveOptions()
	opt.MaxIter = 5000
	b := memsci.Ones(a.Rows())
	accel, _ := memsci.SolveOn(engine, b, memsci.MethodCG, true, opt)
	ref, _ := memsci.Solve(a, b, memsci.MethodCG, opt)
	fmt.Printf("accelerator: %d iterations, reference: %d iterations\n",
		accel.Iterations, ref.Iterations)
	// Output:
	// accelerator: 90 iterations, reference: 90 iterations
}
