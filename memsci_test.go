package memsci_test

import (
	"math"
	"testing"

	"memsci"
)

func TestCatalogFacade(t *testing.T) {
	if len(memsci.Catalog()) != 20 {
		t.Fatal("catalog incomplete")
	}
	spec, err := memsci.MatrixByName("Pres_Poisson")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Rows != 14822 {
		t.Errorf("Pres_Poisson rows %d", spec.Rows)
	}
}

func TestSolveAutoCG(t *testing.T) {
	spec, _ := memsci.MatrixByName("crystm03")
	m := spec.GenerateScaled(0.02)
	opt := memsci.DefaultSolveOptions()
	opt.MaxIter = 5000
	res, err := memsci.Solve(m, nil, memsci.Auto, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("solve did not converge: %d iters res %g", res.Iterations, res.Residual)
	}
}

func TestSolveAutoBiCGSTAB(t *testing.T) {
	spec, _ := memsci.MatrixByName("wang3")
	m := spec.GenerateScaled(0.05)
	if _, err := memsci.JacobiScale(m, false); err != nil {
		t.Fatal(err)
	}
	opt := memsci.DefaultSolveOptions()
	opt.Tol = 1e-7
	opt.MaxIter = 5000
	res, err := memsci.Solve(m, nil, memsci.Auto, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCG-STAB did not converge: res %g", res.Residual)
	}
}

func TestEndToEndFunctionalPipeline(t *testing.T) {
	// The quickstart path: generate, preprocess, build the functional
	// engine, solve on it, compare with the plain solve.
	spec, _ := memsci.MatrixByName("Trefethen_20000")
	m := spec.GenerateScaled(0.008)
	plan, err := memsci.Preprocess(m)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.Efficiency() < 0.3 {
		t.Fatalf("blocked only %.2f", plan.Stats.Efficiency())
	}
	eng, err := memsci.NewEngine(plan, memsci.DefaultClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := memsci.DefaultSolveOptions()
	opt.Tol = 1e-8
	opt.MaxIter = 4000
	b := memsci.Ones(m.Rows())
	accel, err := memsci.SolveOn(eng, b, memsci.Auto, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := memsci.Solve(m, b, memsci.MethodCG, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !accel.Converged || !ref.Converged {
		t.Fatalf("convergence: accel %v ref %v", accel.Converged, ref.Converged)
	}
	if d := accel.Iterations - ref.Iterations; d < -1 || d > 1 {
		t.Errorf("iteration parity broken: %d vs %d (§VII-C)", accel.Iterations, ref.Iterations)
	}
}

func TestEvaluateFacade(t *testing.T) {
	spec, _ := memsci.MatrixByName("torso2")
	m := spec.GenerateScaled(0.1)
	ev, err := memsci.Evaluate("torso2", m, true, spec.SolveIters, memsci.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Speedup() <= 1 {
		t.Errorf("torso2 speedup %.2f", ev.Speedup())
	}
	if math.IsNaN(ev.EnergyRatio()) || ev.EnergyRatio() <= 0 {
		t.Errorf("energy ratio %g", ev.EnergyRatio())
	}
}

func TestSolveMethodSelection(t *testing.T) {
	// A well-conditioned nonsymmetric system every method can solve.
	spec := memsci.MatrixSpec{
		Name: "easy", Rows: 600, NNZ: 600 * 8, Class: 1, /* Banded */
		Band: 12, ExpSpread: 4, Seed: 77, DiagMargin: 0.2,
	}
	m := spec.Generate()
	opt := memsci.DefaultSolveOptions()
	opt.Tol = 1e-8
	opt.MaxIter = 4000
	for _, method := range []memsci.Method{memsci.MethodBiCGSTAB, memsci.MethodGMRES, memsci.MethodBiCG} {
		res, err := memsci.Solve(m, nil, method, opt)
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		if !res.Converged {
			t.Errorf("method %d did not converge (res %g)", method, res.Residual)
		}
	}
}
